"""Fig. 8: GUOQ vs state-of-the-art on the ibm-eagle gate set.

Reports per-tool better/match/worse counts for both metrics used in the
paper: two-qubit-gate reduction and circuit fidelity.
"""

import pytest

from harness import better_match_worse, evaluate_tools, print_table, summary_rows

TOOLS = ["qiskit", "tket", "voqc", "bqskit", "quartz", "quarl"]


def _run():
    result = evaluate_tools(
        "ibm-eagle",
        TOOLS,
        objective_mode="nisq",
        time_limit=1.5,
        max_cases=8,
    )
    print_table(
        "Fig. 8 (top) — 2q gate reduction on ibm-eagle",
        ["tool", "GUOQ better", "match", "GUOQ worse", "GUOQ mean", "tool mean"],
        summary_rows(result, "two_qubit_reduction"),
    )
    print_table(
        "Fig. 8 (bottom) — fidelity on ibm-eagle",
        ["tool", "GUOQ better", "match", "GUOQ worse", "GUOQ mean", "tool mean"],
        summary_rows(result, "fidelity"),
    )
    return result


@pytest.mark.benchmark(group="fig08")
def test_fig08_ibm_eagle(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    for tool in TOOLS:
        better, match, worse = better_match_worse(result, tool, "two_qubit_reduction")
        assert better + match >= worse, tool
        better_f, match_f, worse_f = better_match_worse(result, tool, "fidelity")
        assert better_f + match_f >= worse_f, tool
