"""Fig. 9: GUOQ vs state-of-the-art on the ionq (trapped-ion) gate set."""

import pytest

from harness import better_match_worse, evaluate_tools, print_table, summary_rows

TOOLS = ["qiskit", "bqskit", "queso"]


def _run():
    result = evaluate_tools(
        "ionq",
        TOOLS,
        objective_mode="nisq",
        time_limit=1.5,
        max_cases=8,
    )
    print_table(
        "Fig. 9 (top) — 2q gate reduction on ionq",
        ["tool", "GUOQ better", "match", "GUOQ worse", "GUOQ mean", "tool mean"],
        summary_rows(result, "two_qubit_reduction"),
    )
    print_table(
        "Fig. 9 (bottom) — fidelity on ionq",
        ["tool", "GUOQ better", "match", "GUOQ worse", "GUOQ mean", "tool mean"],
        summary_rows(result, "fidelity"),
    )
    return result


@pytest.mark.benchmark(group="fig09")
def test_fig09_ionq(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    for tool in TOOLS:
        better, match, worse = better_match_worse(result, tool, "fidelity")
        assert better + match >= worse, tool
