"""Hot-path performance benchmarks: resynthesis cache and rewrite memo.

Three measured comparisons back the performance layer's claims, and their
numbers are exported through ``--benchmark-json`` ``extra_info`` so the CI
perf job's ``BENCH_*.json`` artifact records them per run:

* **Resynthesis cache** — the same seeded Clifford+T search run with and
  without a :class:`repro.perf.ResynthesisCache`; the cached run must report
  a non-zero hit rate and higher iterations/sec (block unitaries recur, so
  synthesis calls collapse into lookups).
* **Rewrite no-fire memo** — the same seeded rewrite-only search with and
  without ``GuoqConfig.memoize_rewrites``; the memoized run must reach the
  bit-identical best cost while skipping the no-op full passes.
* **Cross-process shared cache** — a 4-worker ``processes`` portfolio over a
  repeated-block workload, with private per-worker caches versus one shared
  ``shm`` store; the shared run must report cross-worker (remote) hits and
  stay within noise of the private-copy wall-clock.
* **Warm restart** — a tcp cache server with an on-disk corpus is warmed by
  one run, killed, and restarted from its store; the second run against the
  restarted server must reuse the persisted entries (remote hits, zero
  verification failures, zero dropped requests).
* **Batched resynthesis** — one batch of distinct 2-qubit motif blocks
  through :class:`repro.synthesis.BatchResynthesizer` (shared-frontier BFS,
  vectorized distance screens) versus the scalar reference loop; the
  batched pass must return bit-identical outcomes in less wall-clock.
"""

import time
from dataclasses import replace

import pytest

from repro.circuits import Circuit
from repro.core import (
    GuoqConfig,
    GuoqOptimizer,
    ResynthesisTransformation,
    TotalGateCount,
    rewrite_transformations,
)
from repro.distrib import start_tcp_cache_server
from repro.gatesets import CLIFFORD_T, IBMQ20, decompose_to_gate_set
from repro.parallel import PortfolioConfig, PortfolioOptimizer
from repro.perf import ResynthesisCache, TcpCacheBackend
from repro.rewrite import rules_for_gate_set
from repro.suite import qft
from repro.suite.generators import random_clifford_t, repeated_blocks
from repro.synthesis import BatchResynthesizer, CliffordTResynthesizer

from harness import print_table

RESYNTH_ITERATIONS = 300
RESYNTH_SEED = 9
MEMO_ITERATIONS = 4000
MEMO_SEED = 0
SHARED_ITERATIONS = 60
SHARED_SEED = 17
SHARED_WORKERS = 4
#: relative slack on the "no worse than private copies" wall-clock assertion:
#: the shared run pays IPC per miss, which must stay inside runner noise
SHARED_WALL_SLACK = 1.35


def _clifford_t_transformations(cache: "ResynthesisCache | None"):
    resynthesizer = CliffordTResynthesizer(
        epsilon=1e-6,
        max_qubits=2,
        bfs_depth=4,
        max_bfs_nodes=1500,
        anneal_iterations=400,
        anneal_restarts=1,
        rng=3,
    )
    if cache is not None:
        resynthesizer.attach_cache(cache)
    transformations = rewrite_transformations(rules_for_gate_set(CLIFFORD_T))
    transformations.append(
        ResynthesisTransformation(resynthesizer, max_block_qubits=2, max_block_gates=6)
    )
    return transformations


def _timed_run(transformations, cost, config, circuit):
    started = time.monotonic()
    result = GuoqOptimizer(transformations, cost, config).optimize(circuit)
    return result, time.monotonic() - started


@pytest.mark.smoke
@pytest.mark.benchmark(group="perf-hotpath")
def test_resynthesis_cache_speeds_up_search(benchmark):
    """Cached resynthesis must win wall-clock with a non-zero hit rate."""
    circuit = random_clifford_t(4, 60, seed=2)
    config = GuoqConfig(
        epsilon_budget=1e-5,
        time_limit=1e9,
        max_iterations=RESYNTH_ITERATIONS,
        seed=RESYNTH_SEED,
        resynthesis_probability=0.25,
    )

    uncached, uncached_wall = _timed_run(
        _clifford_t_transformations(None), TotalGateCount(), config, circuit
    )

    def _cached_run():
        return _timed_run(
            _clifford_t_transformations(ResynthesisCache(maxsize=256)),
            TotalGateCount(),
            config,
            circuit,
        )

    cached, cached_wall = benchmark.pedantic(_cached_run, rounds=1, iterations=1)

    perf = cached.perf
    assert perf is not None
    assert perf.cache_hits > 0, "repeated block unitaries should hit the cache"
    assert perf.cache_hit_rate > 0.0
    # Same seed, and every cache hit replays a verified-equivalent outcome:
    # the search must end at least as good as the uncached run's quality
    # class; in practice the trajectories coincide until synthesis outcomes
    # diverge, so only the weaker quality bound is asserted.
    assert cached.best_cost <= uncached.initial_cost
    # The measured win: skipping synthesis calls must raise throughput.
    cached_ips = cached.iterations / cached_wall
    uncached_ips = uncached.iterations / uncached_wall
    assert cached_ips > uncached_ips, (
        f"cache must improve iterations/sec (cached {cached_ips:.1f} "
        f"vs uncached {uncached_ips:.1f})"
    )

    benchmark.extra_info["cache_hit_rate"] = perf.cache_hit_rate
    benchmark.extra_info["cache_hits"] = perf.cache_hits
    benchmark.extra_info["cache_misses"] = perf.cache_misses
    benchmark.extra_info["iterations_per_sec_cached"] = cached_ips
    benchmark.extra_info["iterations_per_sec_uncached"] = uncached_ips
    benchmark.extra_info["speedup"] = uncached_wall / cached_wall
    benchmark.extra_info["perf_report"] = perf.to_dict()

    print_table(
        "Resynthesis cache — cached vs uncached GUOQ (random Clifford+T, 4q/60g)",
        ["variant", "wall (s)", "iters/s", "resynth (s)", "hit rate", "best cost"],
        [
            [
                "uncached",
                f"{uncached_wall:.2f}",
                f"{uncached_ips:.0f}",
                f"{uncached.perf.phase_seconds['resynthesis']:.2f}",
                "-",
                uncached.best_cost,
            ],
            [
                "cached",
                f"{cached_wall:.2f}",
                f"{cached_ips:.0f}",
                f"{perf.phase_seconds['resynthesis']:.2f}",
                f"{perf.cache_hit_rate:.2f}",
                cached.best_cost,
            ],
        ],
    )


@pytest.mark.smoke
@pytest.mark.benchmark(group="perf-hotpath")
def test_rewrite_memo_speeds_up_search(benchmark):
    """The no-fire memo must win wall-clock while staying bit-identical."""
    circuit = decompose_to_gate_set(qft(7), IBMQ20)
    transformations = rewrite_transformations(rules_for_gate_set(IBMQ20))
    base = GuoqConfig(time_limit=1e9, max_iterations=MEMO_ITERATIONS, seed=MEMO_SEED)

    plain, plain_wall = _timed_run(
        transformations, TotalGateCount(), replace(base, memoize_rewrites=False), circuit
    )

    def _memoized_run():
        return _timed_run(transformations, TotalGateCount(), base, circuit)

    memoized, memo_wall = benchmark.pedantic(_memoized_run, rounds=1, iterations=1)

    # Bit-identical trajectory: the memo only skips passes that would have
    # rescanned the circuit and returned None.
    assert memoized.best_cost == plain.best_cost
    assert memoized.accepted == plain.accepted
    assert [p.cost for p in memoized.history] == [p.cost for p in plain.history]
    assert memoized.perf.rewrite_skips > 0

    memo_ips = memoized.iterations / memo_wall
    plain_ips = plain.iterations / plain_wall
    assert memo_ips > plain_ips, (
        f"memo must improve iterations/sec (memoized {memo_ips:.0f} vs plain {plain_ips:.0f})"
    )

    benchmark.extra_info["iterations_per_sec_memoized"] = memo_ips
    benchmark.extra_info["iterations_per_sec_plain"] = plain_ips
    benchmark.extra_info["rewrite_skips"] = memoized.perf.rewrite_skips
    benchmark.extra_info["speedup"] = plain_wall / memo_wall

    print_table(
        "Rewrite no-fire memo — memoized vs plain GUOQ (qft_7, ibmq20)",
        ["variant", "wall (s)", "iters/s", "skipped passes", "best cost"],
        [
            ["plain", f"{plain_wall:.2f}", f"{plain_ips:.0f}", 0, plain.best_cost],
            [
                "memoized",
                f"{memo_wall:.2f}",
                f"{memo_ips:.0f}",
                memoized.perf.rewrite_skips,
                memoized.best_cost,
            ],
        ],
    )


def _shared_cache_portfolio(share):
    resynthesizer = CliffordTResynthesizer(
        epsilon=1e-6,
        max_qubits=2,
        bfs_depth=4,
        max_bfs_nodes=1500,
        anneal_iterations=400,
        anneal_restarts=1,
        rng=3,
    )
    if share is None:
        # The honest baseline is the PR 2 status quo: every worker forks a
        # private cold cache and warms it alone across exchange rounds.
        resynthesizer.attach_cache(ResynthesisCache(maxsize=256))
    transformations = rewrite_transformations(rules_for_gate_set(CLIFFORD_T))
    transformations.append(
        ResynthesisTransformation(resynthesizer, max_block_qubits=2, max_block_gates=6)
    )
    config = PortfolioConfig(
        search=GuoqConfig(
            epsilon_budget=1e-5,
            time_limit=1e9,
            max_iterations=SHARED_ITERATIONS,
            seed=SHARED_SEED,
            resynthesis_probability=0.35,
        ),
        num_workers=SHARED_WORKERS,
        exchange_interval=30,
        backend="processes",
    )
    return PortfolioOptimizer(
        transformations, TotalGateCount(), config, share_resynthesis_cache=share
    )


@pytest.mark.smoke
@pytest.mark.benchmark(group="perf-hotpath")
def test_shared_cache_cross_process_portfolio(benchmark):
    """The shm-shared portfolio must show cross-worker hits at no wall cost."""
    circuit = repeated_blocks()

    private_started = time.monotonic()
    private = _shared_cache_portfolio(None).optimize(circuit)
    private_wall = time.monotonic() - private_started

    def _shared_run():
        started = time.monotonic()
        result = _shared_cache_portfolio("shm").optimize(circuit)
        return result, time.monotonic() - started

    shared, shared_wall = benchmark.pedantic(_shared_run, rounds=1, iterations=1)

    assert shared.shared_cache_backend == "shm"
    perf = shared.perf
    assert perf is not None
    assert perf.cache_remote_hits > 0, (
        "process workers must reuse synthesis results their siblings inserted"
    )
    # Sharing may not cost wall-clock: the IPC per miss has to be repaid by
    # synthesis calls that become lookups (slack absorbs runner noise).
    assert shared_wall <= private_wall * SHARED_WALL_SLACK, (
        f"shared-cache portfolio regressed wall-clock: {shared_wall:.2f}s vs "
        f"{private_wall:.2f}s private"
    )
    # Sharing must never degrade the merged result below the private run's
    # starting point (both searches remain sound anytime optimizers).
    assert shared.best_cost <= shared.initial_cost

    benchmark.extra_info["cache_remote_hits"] = perf.cache_remote_hits
    benchmark.extra_info["cache_hits"] = perf.cache_hits
    benchmark.extra_info["cache_hit_rate"] = perf.cache_hit_rate
    benchmark.extra_info["wall_shared"] = shared_wall
    benchmark.extra_info["wall_private"] = private_wall
    benchmark.extra_info["speedup_vs_private"] = private_wall / shared_wall
    benchmark.extra_info["perf_report"] = perf.to_dict()

    private_hits = private.perf.cache_hits if private.perf is not None else 0
    print_table(
        "Shared resynthesis cache — private copies vs shm store "
        f"({SHARED_WORKERS}-worker processes portfolio, repeated-block workload)",
        ["variant", "wall (s)", "hits", "remote hits", "best cost"],
        [
            ["private", f"{private_wall:.2f}", private_hits, "-", private.best_cost],
            [
                "shm-shared",
                f"{shared_wall:.2f}",
                perf.cache_hits,
                perf.cache_remote_hits,
                shared.best_cost,
            ],
        ],
    )


BATCH_RESYNTH_SEED = 5


def _motif_blocks() -> "list[Circuit]":
    """25 distinct 2-qubit Clifford+T motifs, all BFS-reachable in 3 moves.

    Distinct unitaries make the comparison honest: with no duplicates there
    is nothing for caching or dedup to collapse, so scalar-vs-batched is
    purely "25 independent BFS searches" against "one shared-frontier pass
    screening all 25 targets per expanded candidate".
    """
    gates = ["h", "t", "s", "tdg", "z"]
    blocks = []
    for first in gates:
        for second in gates:
            circuit = Circuit(2)
            getattr(circuit, first)(0)
            circuit.cx(0, 1)
            getattr(circuit, second)(1)
            blocks.append(circuit)
    return blocks


@pytest.mark.smoke
@pytest.mark.benchmark(group="perf-hotpath")
def test_batched_resynthesis(benchmark):
    """The batched engine must beat the scalar loop, bit-identically."""

    def _resynthesizer():
        return CliffordTResynthesizer(
            epsilon=1e-6,
            max_qubits=2,
            # depth budget at width 2 is ``bfs_depth - 2``; the motifs are
            # three gates deep, so 5 gives BFS exactly the reach it needs.
            bfs_depth=5,
            max_bfs_nodes=30000,
            anneal_iterations=50,
            anneal_restarts=1,
            rng=BATCH_RESYNTH_SEED,
        )

    blocks = _motif_blocks()
    scalar_started = time.monotonic()
    expected = _resynthesizer().resynthesize_many(blocks)
    scalar_wall = time.monotonic() - scalar_started
    assert all(outcome is not None for outcome in expected), (
        "every motif must be BFS-solvable so the comparison measures search, "
        "not failure handling"
    )

    engine = BatchResynthesizer(_resynthesizer())

    def _batched_run():
        started = time.monotonic()
        results = engine.resynthesize_batch(blocks)
        return results, time.monotonic() - started

    results, batched_wall = benchmark.pedantic(_batched_run, rounds=1, iterations=1)

    # Bit-identity first — a fast wrong answer is worthless.
    assert results == expected
    assert batched_wall < scalar_wall, (
        f"batched resynthesis regressed wall-clock: {batched_wall:.3f}s "
        f"vs {scalar_wall:.3f}s scalar for {len(blocks)} blocks"
    )

    benchmark.extra_info["batch_size"] = len(blocks)
    benchmark.extra_info["wall_scalar"] = scalar_wall
    benchmark.extra_info["wall_batched"] = batched_wall
    benchmark.extra_info["speedup"] = scalar_wall / batched_wall

    print_table(
        "Batched resynthesis — scalar loop vs shared-frontier batch "
        f"({len(blocks)} distinct 2q Clifford+T motifs)",
        ["variant", "wall (s)", "blocks/s", "speedup"],
        [
            ["scalar", f"{scalar_wall:.3f}", f"{len(blocks) / scalar_wall:.1f}", "1.0x"],
            [
                "batched",
                f"{batched_wall:.3f}",
                f"{len(blocks) / batched_wall:.1f}",
                f"{scalar_wall / batched_wall:.1f}x",
            ],
        ],
    )


WARM_RESTART_ITERATIONS = 200
WARM_RESTART_SEED = 9


def _tcp_cached_run(address, config, circuit):
    """One GUOQ run with a fresh front end against the server at ``address``."""
    cache = ResynthesisCache(maxsize=256, shared=True, backend=TcpCacheBackend([address]))
    try:
        result, wall = _timed_run(
            _clifford_t_transformations(cache), TotalGateCount(), config, circuit
        )
        cache.flush()
        stats = cache.stats()
    finally:
        cache.close()
    return result, wall, stats


@pytest.mark.smoke
@pytest.mark.benchmark(group="perf-hotpath")
def test_warm_restart_persistent_cache(benchmark, tmp_path):
    """A cache server restarted from its disk store must serve warm hits.

    Run one: a tcp cache server with ``store_path`` set is warmed by a
    seeded search, then terminated (SIGTERM → exit snapshot).  Run two: a
    *new* server process reloads the corpus and a *fresh* front end replays
    the same seed against it — every hit it gets is necessarily a remote hit
    served from disk-reloaded state, verified against the query unitary
    (``verify_failures == 0``) with nothing silently shed
    (``dropped_requests == 0``).
    """
    store = tmp_path / "resynth_corpus.bin"
    circuit = random_clifford_t(4, 60, seed=2)
    config = GuoqConfig(
        epsilon_budget=1e-5,
        time_limit=1e9,
        max_iterations=WARM_RESTART_ITERATIONS,
        seed=WARM_RESTART_SEED,
        resynthesis_probability=0.25,
    )

    process, address = start_tcp_cache_server(
        maxsize=4096, store_path=str(store), flush_interval=8
    )
    try:
        _, cold_wall, cold_stats = _tcp_cached_run(address, config, circuit)
    finally:
        process.terminate()  # SIGTERM: the server snapshots its store on exit
        process.join(timeout=30.0)
    assert store.exists(), "the warm run must have persisted a corpus file"
    assert cold_stats.puts > 0, "the warm run should have populated the store"

    restarted, address = start_tcp_cache_server(
        maxsize=4096, store_path=str(store), flush_interval=8
    )
    try:

        def _warm_run():
            return _tcp_cached_run(address, config, circuit)

        warm, warm_wall, warm_stats = benchmark.pedantic(_warm_run, rounds=1, iterations=1)
    finally:
        restarted.terminate()
        restarted.join(timeout=30.0)

    assert warm_stats.remote_hits > 0, (
        "a server restarted from its corpus must serve the previous run's entries"
    )
    assert warm_stats.verify_failures == 0, (
        "disk-reloaded entries must verify bit-identically against query unitaries"
    )
    assert warm_stats.dropped_requests == 0 and warm_stats.unreachable_servers == 0
    assert warm.best_cost <= warm.initial_cost

    total_lookups = max(1, warm_stats.hits + warm_stats.misses)
    benchmark.extra_info["cache_remote_hits"] = warm_stats.remote_hits
    benchmark.extra_info["cache_hit_rate"] = warm_stats.hits / total_lookups
    benchmark.extra_info["cache_dropped_requests"] = (
        warm_stats.dropped_requests + warm_stats.backend_failures
    )
    benchmark.extra_info["cache_verify_failures"] = warm_stats.verify_failures
    benchmark.extra_info["store_bytes"] = store.stat().st_size
    benchmark.extra_info["wall_cold"] = cold_wall
    benchmark.extra_info["wall_warm"] = warm_wall

    print_table(
        "Warm restart — tcp cache server restarted from its on-disk corpus "
        "(seeded Clifford+T search, 4q/60g)",
        ["run", "wall (s)", "hits", "remote hits", "verify fails", "dropped"],
        [
            [
                "cold (fresh store)",
                f"{cold_wall:.2f}",
                cold_stats.hits,
                cold_stats.remote_hits,
                cold_stats.verify_failures,
                cold_stats.dropped_requests,
            ],
            [
                "warm (restarted)",
                f"{warm_wall:.2f}",
                warm_stats.hits,
                warm_stats.remote_hits,
                warm_stats.verify_failures,
                warm_stats.dropped_requests,
            ],
        ],
    )
