"""Table 2: the evaluated gate sets and the cost of lowering into each."""

import pytest

from harness import print_table
from repro.gatesets import ALL_GATE_SETS, decompose_to_gate_set
from repro.suite import qft, toffoli_chain


def _run():
    rows = []
    reference = {"qft_5": qft(5), "tof_5": toffoli_chain(3)}
    for name, gate_set in sorted(ALL_GATE_SETS.items()):
        lowered_counts = {}
        for ref_name, circuit in reference.items():
            try:
                lowered = decompose_to_gate_set(circuit, gate_set)
                lowered_counts[ref_name] = lowered.size()
            except Exception:
                lowered_counts[ref_name] = "n/a"
        rows.append(
            [
                name,
                ",".join(sorted(gate_set.gates - {"id"})),
                gate_set.architecture,
                "continuous" if gate_set.parameterized else "finite",
                lowered_counts["qft_5"],
                lowered_counts["tof_5"],
            ]
        )
    print_table(
        "Table 2 — gate sets",
        ["gate set", "gates", "architecture", "kind", "qft_5 size", "tof_5 size"],
        rows,
    )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_gate_sets(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert len(rows) == 5
