"""Bench-session hooks: replay the reproduced figure/table text at the end.

pytest captures per-test output, so the tables rendered by
``harness.print_table`` would otherwise be invisible in a default
``pytest benchmarks/ --benchmark-only`` run; this hook prints every rendered
table in the terminal summary, where it lands in the bench log.
"""

from harness import RENDERED_TABLES


def pytest_terminal_summary(terminalreporter):
    if not RENDERED_TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced figures and tables")
    for block in RENDERED_TABLES:
        for line in block.splitlines():
            terminalreporter.write_line(line)
