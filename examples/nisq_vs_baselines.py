"""NISQ scenario: compare GUOQ against baseline optimizers on real workloads.

Optimizes a QAOA MaxCut circuit and a ripple-carry adder for the ibm-eagle
gate set, reports two-qubit gate counts and estimated circuit fidelity under
the synthetic IBM-Washington-like noise model for every tool.

Run with::

    python examples/nisq_vs_baselines.py
"""

from repro import decompose_to_gate_set, get_gate_set, optimize_circuit
from repro.baselines import make_baseline
from repro.core import default_objective
from repro.noise import device_for_gate_set
from repro.suite import qaoa_maxcut, ripple_carry_adder

TOOLS = ["qiskit", "tket", "voqc", "bqskit", "quarl"]
TIME_LIMIT = 8.0


def main() -> None:
    gate_set = get_gate_set("ibm-eagle")
    device = device_for_gate_set(gate_set.name)
    objective = default_objective(gate_set, "nisq")

    workloads = {
        "qaoa_maxcut_8": qaoa_maxcut(8, layers=2, seed=1),
        "rc_adder_3": ripple_carry_adder(3),
    }
    for name, raw in workloads.items():
        circuit = decompose_to_gate_set(raw, gate_set)
        print(f"\n== {name}: {circuit.size()} gates, {circuit.two_qubit_count()} 2q, "
              f"fidelity {device.circuit_fidelity(circuit):.4f}")

        for tool in TOOLS:
            optimizer = make_baseline(tool, gate_set, cost=objective, time_limit=TIME_LIMIT, seed=0)
            optimized = optimizer.optimize(circuit)
            print(f"  {tool:<8s} {optimized.size():4d} gates, {optimized.two_qubit_count():3d} 2q, "
                  f"fidelity {device.circuit_fidelity(optimized):.4f}")

        result = optimize_circuit(
            circuit, gate_set, objective=objective, time_limit=TIME_LIMIT, seed=0
        )
        best = result.best_circuit
        print(f"  {'guoq':<8s} {best.size():4d} gates, {best.two_qubit_count():3d} 2q, "
              f"fidelity {device.circuit_fidelity(best):.4f}  "
              f"(error bound {result.error_bound:.1e})")


if __name__ == "__main__":
    main()
