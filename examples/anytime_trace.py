"""Anytime behaviour: rewrite-only vs resynthesis-only vs combined (Fig. 7).

Runs GUOQ three times on the same circuit with different transformation sets
and prints the improvement trace (elapsed time vs best two-qubit count) of
each, demonstrating how resynthesis un-sticks the search when rewrite rules
plateau.

Run with::

    python examples/anytime_trace.py
"""

from repro import decompose_to_gate_set, get_gate_set, optimize_circuit
from repro.suite import barenco_toffoli

CONFIGS = {
    "rewrite only": dict(include_rewrites=True, include_resynthesis=False),
    "resynth only": dict(include_rewrites=False, include_resynthesis=True),
    "combined": dict(include_rewrites=True, include_resynthesis=True),
}


def main() -> None:
    gate_set = get_gate_set("ibmq20")
    circuit = decompose_to_gate_set(barenco_toffoli(5), gate_set)
    print(f"barenco_tof_5 on {gate_set.name}: {circuit.two_qubit_count()} two-qubit gates\n")

    for label, flags in CONFIGS.items():
        result = optimize_circuit(
            circuit,
            gate_set,
            objective="2q",
            time_limit=15.0,
            seed=0,
            synthesis_time_budget=2.0,
            **flags,
        )
        print(f"{label}:")
        for point in result.history:
            print(
                f"  t={point.elapsed:6.2f}s  2q={point.two_qubit_count:4d}  "
                f"total={point.total_count:4d}"
            )
        print(f"  final: {result.best_circuit.two_qubit_count()} two-qubit gates\n")


if __name__ == "__main__":
    main()
