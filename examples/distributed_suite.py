"""Distributed suite evaluation: coordinator, two host agents, shared cache.

End-to-end demo of ``repro.distrib`` on one machine, using real sockets and
real agent processes — exactly what a multi-machine deployment looks like,
minus the machines (swap ``127.0.0.1`` for hostnames and run each CLI on
its own box; see ``docs/distributed.md``).

Two phases:

1. **Determinism** — a 2-"host" sharded run of a small FTQC suite is
   compared, fingerprint for fingerprint, against the single-host execution
   of the same seed and shard plan.  The merge is machine-count-agnostic,
   so they must be bit-identical.
2. **Cross-host cache** — both hosts optimize replicas of the same
   repeated-block circuit while attached to one TCP cache server; each
   host's lookups start hitting entries the *other machine* synthesized,
   visible as ``cache_remote_hits`` in the merged report.

Run with::

    python examples/distributed_suite.py
"""

import multiprocessing

from repro.distrib import (
    Coordinator,
    DistributedJob,
    make_shard_plan,
    run_host_agent,
    run_local,
    start_tcp_cache_server,
)


def run_cluster(job, plan, hosts=2, timeout=300.0):
    """One distributed run: a coordinator thread plus ``hosts`` agent processes."""
    coordinator = Coordinator(job, plan, timeout=timeout)
    address = coordinator.start()
    context = multiprocessing.get_context()
    agents = [
        context.Process(target=run_host_agent, args=(address,), kwargs={"name": f"host-{i}"})
        for i in range(hosts)
    ]
    for agent in agents:
        agent.start()
    result = coordinator.join(timeout=timeout + 30.0)
    for agent in agents:
        agent.join(timeout=30.0)
    return result


def determinism_demo() -> None:
    print("== sharded suite run vs single-host baseline ==")
    job = DistributedJob(
        suite="ftqc",
        scale="tiny",
        include_resynthesis=False,  # bit-reproducible configuration
        max_iterations=60,
        num_workers=2,
        exchange_interval=30,
    )
    plan = make_shard_plan(
        ["ghz_5", "bv_5", "tof_4", "grover_3"], num_shards=4, root_seed=7, replicas=2
    )
    print(f"plan: {plan.describe()}")
    baseline = run_local(job, plan)
    distributed = run_cluster(job, plan, hosts=2)
    print(f"hosts: {', '.join(distributed.hosts)}; shard owners {distributed.shard_hosts}")
    for event in distributed.steals:
        print(f"  steal: {event}")
    for case in distributed.cases:
        merged = case.merged
        print(
            f"  {case.name}: {merged.initial_cost:g} -> {merged.best_cost:g} "
            f"({merged.cost_reduction:.0%}) over {len(case.replicas)} replicas"
        )
    match = distributed.fingerprint() == baseline.fingerprint()
    print(f"fingerprints match single-host baseline: {match}")
    assert match, "merge determinism violated"
    print()


def shared_cache_demo() -> None:
    print("== cross-host shared resynthesis cache (tcp backend) ==")
    server, address = start_tcp_cache_server()
    url = f"tcp://{address[0]}:{address[1]}"
    print(f"cache server at {url}")
    try:
        job = DistributedJob(
            suite="builtin",
            lower=False,
            max_iterations=60,
            num_workers=1,
            exchange_interval=30,
            resynthesis_probability=0.4,
            synthesis_time_budget=0.3,
            share_resynthesis_cache=url,
        )
        # Two replicas of one circuit, one per host: every remote hit below
        # was served by a block the *other host* synthesized.
        plan = make_shard_plan(["repeated_blocks"], num_shards=2, root_seed=17, replicas=2)
        result = run_cluster(job, plan)
        perf = result.perf
        print(
            f"cache: {perf.cache_hits} hits / {perf.cache_misses} misses "
            f"({perf.cache_hit_rate:.0%}), {perf.cache_remote_hits} cross-host remote hits"
        )
        for note in perf.notes:
            print(f"  note: {note}")
    finally:
        server.terminate()
        server.join(timeout=10.0)
    print()


def main() -> None:
    determinism_demo()
    shared_cache_demo()


if __name__ == "__main__":
    main()
