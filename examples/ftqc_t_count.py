"""FTQC scenario: reduce T count (then CX count) on Clifford+T circuits.

Reproduces the Q4 pipeline of the paper on a multi-controlled Toffoli and an
adder: first the phase-polynomial optimizer (the PyZX stand-in) reduces T
gates, then GUOQ is run on its output to reduce CX gates without increasing
the T count (Fig. 14).

Run with::

    python examples/ftqc_t_count.py
"""

from repro import decompose_to_gate_set, get_gate_set, optimize_circuit
from repro.baselines import PhasePolynomialOptimizer
from repro.suite import barenco_toffoli, vbe_adder


def report(label: str, circuit) -> None:
    print(
        f"  {label:<22s} total {circuit.size():4d}   T {circuit.t_count():3d}   "
        f"CX {circuit.two_qubit_count():3d}"
    )


def main() -> None:
    gate_set = get_gate_set("clifford+t")
    pyzx_proxy = PhasePolynomialOptimizer()

    for raw in (barenco_toffoli(4), vbe_adder(2)):
        circuit = decompose_to_gate_set(raw, gate_set)
        print(f"\n== {raw.name}")
        report("input", circuit)

        # Step 1: dedicated T-count reduction (PyZX stand-in).
        after_phase_poly = pyzx_proxy.optimize(circuit)
        report("phase-polynomial", after_phase_poly)

        # Step 2: GUOQ with the FTQC objective (2*T + CX) on the result.
        result = optimize_circuit(
            after_phase_poly,
            gate_set,
            objective="ftqc",
            time_limit=8.0,
            seed=0,
        )
        report("phase-poly + GUOQ", result.best_circuit)


if __name__ == "__main__":
    main()
