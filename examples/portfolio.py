"""Parallel portfolio search: N GUOQ workers with incumbent exchange.

Fans a circuit out to four workers — the anchor (base configuration), a pure
restart, and exploratory/resynthesis-heavy variants — advances them in
exchange rounds, and prints the merged anytime trace alongside each worker's
contribution.  Compare with ``examples/anytime_trace.py``: the portfolio's
merged curve is the lower envelope of its workers' curves.

Run with::

    python examples/portfolio.py
"""

from repro import decompose_to_gate_set, get_gate_set, optimize_circuit_portfolio
from repro.suite import qft


def main() -> None:
    gate_set = get_gate_set("ibmq20")
    circuit = decompose_to_gate_set(qft(6), gate_set)
    print(
        f"qft_6 on {gate_set.name}: {circuit.size()} gates, "
        f"{circuit.two_qubit_count()} two-qubit\n"
    )

    result = optimize_circuit_portfolio(
        circuit,
        gate_set,
        objective="nisq",
        time_limit=15.0,
        seed=0,
        num_workers=4,
        exchange_interval=250,
        synthesis_time_budget=1.0,
    )

    print(f"backend: {result.backend}, {result.rounds} exchange rounds, "
          f"{result.total_iterations} total iterations\n")
    print("merged anytime trace (portfolio incumbent):")
    for point in result.history:
        print(f"  t={point.elapsed:6.2f}s  cost={point.cost:8.2f}  "
              f"2q={point.two_qubit_count:4d}  total={point.total_count:4d}")

    print("\nper-worker results:")
    for index, (label, worker) in enumerate(zip(result.worker_labels, result.worker_results)):
        marker = " <- best" if index == result.best_worker else ""
        print(f"  worker {index} [{label:>14}]: best={worker.best_cost:8.2f}  "
              f"iterations={worker.iterations}{marker}")

    print(f"\nportfolio best: {result.best_circuit.two_qubit_count()} two-qubit gates "
          f"(from {circuit.two_qubit_count()}), error bound {result.error_bound:g}")


if __name__ == "__main__":
    main()
