"""Cross-process shared resynthesis cache: one store, many worker processes.

Runs the same 4-worker ``processes`` portfolio twice over a workload built
from one repeated block motif — first with private per-worker caches, then
with a shared ``shm`` store — and prints the merged cache statistics.  On
the shared run every worker's synthesis results are visible to its siblings,
so the report shows *remote* hits: lookups answered by an entry another
process inserted.  Swap ``"shm"`` for ``"server"`` to route the same runs
through a dedicated cache process instead (see ``docs/caching.md`` for the
backend trade-offs).

Run with::

    python examples/shared_cache_portfolio.py
"""

import time

from repro import ResynthesisCache
from repro.core import (
    GuoqConfig,
    ResynthesisTransformation,
    TotalGateCount,
    rewrite_transformations,
)
from repro.gatesets import CLIFFORD_T
from repro.parallel import PortfolioConfig, PortfolioOptimizer
from repro.rewrite import rules_for_gate_set
from repro.suite.generators import repeated_blocks
from repro.synthesis import CliffordTResynthesizer


def build_optimizer(share) -> PortfolioOptimizer:
    resynthesizer = CliffordTResynthesizer(
        epsilon=1e-6,
        max_qubits=2,
        bfs_depth=4,
        max_bfs_nodes=1500,
        anneal_iterations=400,
        anneal_restarts=1,
        rng=3,
    )
    if share is None:
        # the baseline: each worker forks this cache cold and warms it alone
        resynthesizer.attach_cache(ResynthesisCache(maxsize=256))
    transformations = rewrite_transformations(rules_for_gate_set(CLIFFORD_T))
    transformations.append(
        ResynthesisTransformation(resynthesizer, max_block_qubits=2, max_block_gates=6)
    )
    config = PortfolioConfig(
        search=GuoqConfig(
            epsilon_budget=1e-5,
            time_limit=1e9,
            max_iterations=80,
            seed=17,
            resynthesis_probability=0.35,
        ),
        num_workers=4,
        exchange_interval=40,
        backend="processes",
    )
    return PortfolioOptimizer(
        transformations, TotalGateCount(), config, share_resynthesis_cache=share
    )


def run(label: str, share) -> None:
    circuit = repeated_blocks()
    started = time.monotonic()
    result = build_optimizer(share).optimize(circuit)
    wall = time.monotonic() - started
    perf = result.perf
    print(f"{label}:")
    print(f"  wall {wall:.2f}s, best cost {result.best_cost:g} "
          f"(from {result.initial_cost:g}), backend {result.backend}")
    print(f"  cache: {perf.cache_hits} hits / {perf.cache_misses} misses "
          f"({perf.cache_hit_rate:.0%}), {perf.cache_remote_hits} remote hits")
    for note in perf.notes:
        print(f"  note: {note}")
    print()


def main() -> None:
    run("private per-worker caches", None)
    run("shared shm store", "shm")


if __name__ == "__main__":
    main()
