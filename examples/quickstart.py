"""Quickstart: optimize a QFT circuit for the ibm-eagle gate set with GUOQ.

Run with::

    python examples/quickstart.py
"""

from repro import decompose_to_gate_set, get_gate_set, optimize_circuit
from repro.circuits import circuit_distance
from repro.suite import qft


def main() -> None:
    gate_set = get_gate_set("ibm-eagle")

    # 1. Build a benchmark circuit and lower it into the target gate set,
    #    exactly as the paper feeds each optimizer an already-decomposed input.
    circuit = decompose_to_gate_set(qft(6), gate_set)
    print(f"input:     {circuit.size()} gates, {circuit.two_qubit_count()} two-qubit gates")

    # 2. Run GUOQ.  The objective "nisq" maximizes fidelity under a synthetic
    #    superconducting-device noise model; "2q" and "ftqc" are also available.
    result = optimize_circuit(
        circuit,
        gate_set,
        objective="nisq",
        epsilon_budget=1e-6,
        time_limit=10.0,
        seed=0,
    )
    optimized = result.best_circuit

    # 3. Inspect the outcome.  The error bound is the sum of the epsilons of
    #    every approximate transformation that was accepted (Theorem 4.2).
    print(f"optimized: {optimized.size()} gates, {optimized.two_qubit_count()} two-qubit gates")
    print(f"cost reduction: {100 * result.cost_reduction:.1f}%")
    print(f"error bound:    {result.error_bound:.2e}")
    print(f"measured Hilbert-Schmidt distance: {circuit_distance(circuit, optimized):.2e}")
    print(f"search: {result.iterations} iterations, {result.accepted} accepted moves")
    print("accepted transformations:")
    for name, count in sorted(result.applications_by_transformation.items()):
        print(f"  {count:4d}  {name}")


if __name__ == "__main__":
    main()
